// Unit and property tests for the filesystem substrate: disk images, the
// on-image SimFs, and the host-side LoopMount with snapshot staleness.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fs/disk_image.h"
#include "fs/loop_mount.h"
#include "fs/simfs.h"

namespace vread::fs {
namespace {

using mem::Buffer;

DiskImagePtr make_image(std::uint64_t mb = 64) {
  return std::make_shared<DiskImage>(mb * 1024 * 1024);
}

TEST(DiskImage, ReadBackWhatWasWritten) {
  DiskImage img(1 << 20);
  Buffer data = Buffer::deterministic(1, 0, 10'000);
  img.write(1234, data);
  EXPECT_EQ(img.read(1234, 10'000), data);
}

TEST(DiskImage, UnwrittenRegionsReadZero) {
  DiskImage img(1 << 20);
  Buffer z = img.read(500'000, 64);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], 0);
}

TEST(DiskImage, WritesSpanChunkBoundaries) {
  DiskImage img(4 * DiskImage::kChunkSize);
  Buffer data = Buffer::deterministic(2, 0, DiskImage::kChunkSize + 999);
  std::uint64_t off = DiskImage::kChunkSize - 77;
  img.write(off, data);
  EXPECT_EQ(img.read(off, data.size()), data);
}

TEST(DiskImage, SparseAllocation) {
  DiskImage img(1ULL << 40);  // 1 TB logical
  img.write(1ULL << 39, reinterpret_cast<const std::uint8_t*>("x"), 1);
  EXPECT_LE(img.allocated_bytes(), 2 * DiskImage::kChunkSize);
  EXPECT_EQ(img.size(), 1ULL << 40);
}

TEST(DiskImage, IdsAreUnique) {
  DiskImage a(4096), b(4096);
  EXPECT_NE(a.id(), b.id());
}

TEST(SimFs, FormatAndReopen) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  EXPECT_EQ(fs.superblock().magic, kFsMagic);
  // Reopen from the same image parses the same superblock.
  SimFs again(img);
  EXPECT_EQ(again.superblock().generation, fs.superblock().generation);
  EXPECT_EQ(again.superblock().root_inode, fs.superblock().root_inode);
}

TEST(SimFs, OpenUnformattedImageThrows) {
  auto img = make_image(1);
  EXPECT_THROW(SimFs fs(img), FsError);
}

TEST(SimFs, CreateWriteRead) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  Buffer data = Buffer::deterministic(7, 0, 100'000);
  std::uint32_t ino = fs.write_file("/blk_001", data);
  EXPECT_EQ(fs.file_size(ino), 100'000u);
  EXPECT_EQ(fs.read(ino, 0, 100'000), data);
}

TEST(SimFs, SubRangeReadsMatch) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  Buffer data = Buffer::deterministic(8, 0, 50'000);
  std::uint32_t ino = fs.write_file("/f", data);
  EXPECT_EQ(fs.read(ino, 10'000, 5'000), data.slice(10'000, 5'000));
  EXPECT_EQ(fs.read(ino, 49'999, 1), data.slice(49'999, 1));
  // Reads past EOF are clamped.
  EXPECT_EQ(fs.read(ino, 49'000, 10'000).size(), 1'000u);
}

TEST(SimFs, AppendExtendsFile) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  std::uint32_t ino = fs.create("/f");
  Buffer a = Buffer::deterministic(9, 0, 6'000);
  Buffer b = Buffer::deterministic(9, 6'000, 6'000);
  fs.append(ino, a);
  fs.append(ino, b);
  EXPECT_EQ(fs.file_size(ino), 12'000u);
  EXPECT_EQ(fs.read(ino, 0, 12'000), Buffer::deterministic(9, 0, 12'000));
}

TEST(SimFs, UnalignedAppendsPreserveContent) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  std::uint32_t ino = fs.create("/f");
  std::uint64_t off = 0;
  for (std::uint64_t n : {1ULL, 4095ULL, 4096ULL, 4097ULL, 123ULL, 20000ULL}) {
    fs.append(ino, Buffer::deterministic(5, off, n));
    off += n;
  }
  EXPECT_EQ(fs.read(ino, 0, off), Buffer::deterministic(5, 0, off));
}

TEST(SimFs, DirectoriesNest) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  fs.mkdir("/data");
  fs.mkdir("/data/current");
  fs.write_file("/data/current/blk_1", Buffer::deterministic(1, 0, 100));
  fs.write_file("/data/current/blk_2", Buffer::deterministic(2, 0, 100));
  EXPECT_TRUE(fs.exists("/data/current/blk_1"));
  EXPECT_FALSE(fs.exists("/data/current/blk_3"));
  auto entries = fs.list("/data/current");
  EXPECT_EQ(entries.size(), 2u);
}

TEST(SimFs, CreateDuplicateThrows) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  fs.create("/f");
  EXPECT_THROW(fs.create("/f"), FsError);
}

TEST(SimFs, MissingParentThrows) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  EXPECT_THROW(fs.create("/nodir/f"), FsError);
}

TEST(SimFs, RemoveAndRename) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  fs.write_file("/a", Buffer::deterministic(1, 0, 10));
  fs.rename("/a", "/b");
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_TRUE(fs.exists("/b"));
  fs.remove("/b");
  EXPECT_FALSE(fs.exists("/b"));
}

TEST(SimFs, GenerationBumpsOnEveryMutation) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  std::uint64_t g0 = fs.generation();
  fs.mkdir("/d");
  std::uint64_t g1 = fs.generation();
  EXPECT_GT(g1, g0);
  std::uint32_t ino = fs.create("/d/f");
  std::uint64_t g2 = fs.generation();
  EXPECT_GT(g2, g1);
  fs.append(ino, Buffer::deterministic(1, 0, 10));
  EXPECT_GT(fs.generation(), g2);
}

TEST(SimFs, ImageFullThrows) {
  auto img = std::make_shared<DiskImage>(64 * 4096);  // tiny: 64 blocks
  SimFs fs = SimFs::format(img, 16);
  std::uint32_t ino = fs.create("/f");
  EXPECT_THROW(fs.append(ino, Buffer::deterministic(1, 0, 10 * 1024 * 1024)), FsError);
}

TEST(SimFs, ManyFilesSurviveNamespaceChurn) {
  auto img = make_image(128);
  SimFs fs = SimFs::format(img);
  fs.mkdir("/current");
  for (int i = 0; i < 100; ++i) {
    std::string path = "/current/blk_" + std::to_string(i);
    fs.write_file(path, Buffer::deterministic(static_cast<std::uint64_t>(i), 0, 5000));
  }
  for (int i = 0; i < 100; ++i) {
    std::string path = "/current/blk_" + std::to_string(i);
    auto ino = fs.lookup(path);
    ASSERT_TRUE(ino.has_value()) << path;
    EXPECT_EQ(fs.read(*ino, 0, 5000),
              Buffer::deterministic(static_cast<std::uint64_t>(i), 0, 5000));
  }
}

// --- LoopMount: the vRead staleness/remount mechanism ---

TEST(LoopMount, SeesFilesPresentAtMountTime) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  Buffer data = Buffer::deterministic(3, 0, 20'000);
  fs.write_file("/blk", data);
  LoopMount mount(img);
  auto ino = mount.lookup("/blk");
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(mount.read(*ino, 0, 20'000), data);
  EXPECT_FALSE(mount.stale());
}

TEST(LoopMount, NewFilesInvisibleUntilRefresh) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  LoopMount mount(img);
  fs.write_file("/blk_new", Buffer::deterministic(4, 0, 1000));
  // Guest wrote after the mount snapshot: invisible + stale flag set.
  EXPECT_FALSE(mount.lookup("/blk_new").has_value());
  EXPECT_TRUE(mount.stale());
  mount.refresh();
  EXPECT_TRUE(mount.lookup("/blk_new").has_value());
  EXPECT_FALSE(mount.stale());
}

TEST(LoopMount, AppendedBytesInvisibleUntilRefresh) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  std::uint32_t ino = fs.create("/blk");
  fs.append(ino, Buffer::deterministic(5, 0, 1000));
  LoopMount mount(img);
  fs.append(ino, Buffer::deterministic(5, 1000, 1000));
  auto snap = mount.lookup("/blk");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->size, 1000u);  // stale size
  EXPECT_EQ(mount.read(*snap, 0, 999999).size(), 1000u);
  mount.refresh();
  snap = mount.lookup("/blk");
  EXPECT_EQ(snap->size, 2000u);
  EXPECT_EQ(mount.read(*snap, 0, 2000), Buffer::deterministic(5, 0, 2000));
}

TEST(LoopMount, SnapshotsNestedDirectories) {
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  fs.mkdir("/data");
  fs.mkdir("/data/current");
  fs.write_file("/data/current/blk_9", Buffer::deterministic(9, 0, 128));
  LoopMount mount(img);
  EXPECT_TRUE(mount.lookup("/data/current/blk_9").has_value());
  EXPECT_EQ(mount.file_count(), 1u);
}

TEST(LoopMount, WriteOncePropertyMakesStaleReadsCorrect) {
  // Property from the paper: because HDFS blocks are write-once, any block
  // visible in a snapshot reads byte-correct forever even while the guest
  // keeps creating new blocks.
  auto img = make_image(128);
  SimFs fs = SimFs::format(img);
  fs.mkdir("/current");
  fs.write_file("/current/blk_0", Buffer::deterministic(100, 0, 64 * 1024));
  LoopMount mount(img);
  for (int i = 1; i <= 20; ++i) {
    fs.write_file("/current/blk_" + std::to_string(i),
                  Buffer::deterministic(100 + static_cast<std::uint64_t>(i), 0, 64 * 1024));
    auto snap = mount.lookup("/current/blk_0");
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(mount.read(*snap, 0, 64 * 1024), Buffer::deterministic(100, 0, 64 * 1024));
  }
  EXPECT_EQ(mount.file_count(), 1u);
  mount.refresh();
  EXPECT_EQ(mount.file_count(), 21u);
  EXPECT_EQ(mount.refresh_count(), 2u);
}

TEST(LoopMount, RemovedFileStillReadableFromSnapshot) {
  // Bump allocation never reuses blocks, so a stale snapshot of a deleted
  // file still reads the old bytes (and refresh makes it disappear).
  auto img = make_image();
  SimFs fs = SimFs::format(img);
  Buffer data = Buffer::deterministic(6, 0, 5000);
  fs.write_file("/blk", data);
  LoopMount mount(img);
  fs.remove("/blk");
  auto snap = mount.lookup("/blk");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(mount.read(*snap, 0, 5000), data);
  mount.refresh();
  EXPECT_FALSE(mount.lookup("/blk").has_value());
}

}  // namespace
}  // namespace vread::fs
