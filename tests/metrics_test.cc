// Unit tests for cycle accounting, stats helpers, and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/accounting.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace vread::metrics {
namespace {

TEST(CycleAccounting, ChargesAccumulatePerThreadAndCategory) {
  CycleAccounting acct;
  ThreadId a = acct.register_thread("vcpu0", "vm1");
  ThreadId b = acct.register_thread("vhost0", "host");
  acct.charge(a, CycleCategory::kClientApp, 100);
  acct.charge(a, CycleCategory::kClientApp, 50);
  acct.charge(a, CycleCategory::kVirtioCopy, 25);
  acct.charge(b, CycleCategory::kVhostNet, 10);
  EXPECT_EQ(acct.thread_total(a), 175u);
  EXPECT_EQ(acct.thread_total(a, CycleCategory::kClientApp), 150u);
  EXPECT_EQ(acct.thread_total(a, CycleCategory::kVirtioCopy), 25u);
  EXPECT_EQ(acct.thread_total(b), 10u);
  EXPECT_EQ(acct.thread_name(a), "vcpu0");
  EXPECT_EQ(acct.thread_group(b), "host");
}

TEST(CycleAccounting, GroupAggregation) {
  CycleAccounting acct;
  ThreadId a = acct.register_thread("vcpu0", "vm1");
  ThreadId b = acct.register_thread("io0", "vm1");
  ThreadId c = acct.register_thread("vcpu1", "vm2");
  acct.charge(a, CycleCategory::kClientApp, 100);
  acct.charge(b, CycleCategory::kVhostNet, 40);
  acct.charge(c, CycleCategory::kClientApp, 7);
  EXPECT_EQ(acct.group_total("vm1"), 140u);
  EXPECT_EQ(acct.group_total("vm1", CycleCategory::kVhostNet), 40u);
  EXPECT_EQ(acct.group_total("vm2"), 7u);
  EXPECT_EQ(acct.group_total("nope"), 0u);
}

TEST(CycleAccounting, SnapshotDeltas) {
  CycleAccounting acct;
  ThreadId a = acct.register_thread("vcpu0", "vm1");
  acct.charge(a, CycleCategory::kClientApp, 100);
  acct.note_busy(a, 500);
  auto snap = acct.snapshot();
  acct.charge(a, CycleCategory::kClientApp, 30);
  acct.note_busy(a, 70);
  // New thread after the snapshot counts from zero.
  ThreadId b = acct.register_thread("late", "vm1");
  acct.charge(b, CycleCategory::kClientApp, 5);
  EXPECT_EQ(acct.group_total_since(snap, "vm1", CycleCategory::kClientApp), 35u);
  EXPECT_EQ(acct.group_total_since(snap, "vm1"), 35u);
  EXPECT_EQ(acct.group_busy_since(snap, "vm1"), 70);
}

TEST(CycleAccounting, ResetZeroesEverything) {
  CycleAccounting acct;
  ThreadId a = acct.register_thread("t", "g");
  acct.charge(a, CycleCategory::kOther, 9);
  acct.note_busy(a, 9);
  acct.reset();
  EXPECT_EQ(acct.thread_total(a), 0u);
  EXPECT_EQ(acct.thread_busy_time(a), 0);
}

TEST(Categories, AllHaveNames) {
  for (std::uint8_t i = 0; i < kNumCategories; ++i) {
    EXPECT_STRNE(to_string(static_cast<CycleCategory>(i)), "?");
  }
}

TEST(LatencyRecorder, BasicStats) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i * 1000);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.min(), 1000);
  EXPECT_EQ(rec.max(), 100000);
  EXPECT_DOUBLE_EQ(rec.mean(), 50500.0);
  EXPECT_EQ(rec.percentile(50), 51000);
  EXPECT_EQ(rec.percentile(0), 1000);
  EXPECT_EQ(rec.percentile(100), 100000);
}

TEST(LatencyRecorder, EmptyRecorderStatsAreZero) {
  // Regression: min()/max() on an empty recorder used to dereference
  // *min_element(end, end). All stats of "no samples" are defined as 0.
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.min(), 0);
  EXPECT_EQ(rec.max(), 0);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_EQ(rec.percentile(50), 0);
}

TEST(LatencyRecorder, SummaryMatchesScalarAccessors) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i * 1000);
  const Summary s = rec.summary();
  EXPECT_EQ(s.count, rec.count());
  EXPECT_EQ(s.min, rec.min());
  EXPECT_EQ(s.max, rec.max());
  EXPECT_DOUBLE_EQ(s.mean, rec.mean());
  EXPECT_EQ(s.p50, rec.percentile(50));
  EXPECT_EQ(s.p95, rec.percentile(95));
  EXPECT_EQ(s.p99, rec.percentile(99));
}

TEST(LatencyRecorder, SummaryOfEmptyRecorderIsAllZeros) {
  const Summary s = LatencyRecorder{}.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0);
  EXPECT_EQ(s.p95, 0);
  EXPECT_EQ(s.p99, 0);
}

TEST(Stats, Throughput) {
  EXPECT_DOUBLE_EQ(throughput_mbps(100'000'000, sim::sec(1)), 100.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(50'000'000, sim::ms(500)), 100.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(1, 0), 0.0);
}

TEST(Stats, Rates) {
  EXPECT_DOUBLE_EQ(rate_per_sec(5000, sim::sec(1)), 5000.0);
  EXPECT_DOUBLE_EQ(rate_per_sec(100, sim::ms(100)), 1000.0);
}

TEST(Stats, PercentHelpers) {
  EXPECT_DOUBLE_EQ(percent_gain(100.0, 120.0), 20.0);
  EXPECT_DOUBLE_EQ(percent_gain(100.0, 60.0), -40.0);
  EXPECT_DOUBLE_EQ(percent_reduction(100.0, 60.0), 40.0);
  EXPECT_DOUBLE_EQ(percent_gain(0.0, 5.0), 0.0);
}

TEST(Table, RendersAlignedCells) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(21.333), "+21.3%");
  EXPECT_EQ(fmt_pct(-11.3), "-11.3%");
}

TEST(BarChart, ScalesBarsToMax) {
  BarChart chart("title", "MBps");
  chart.add("a", 100.0).add("b", 50.0);
  std::ostringstream os;
  chart.print(os, 10);
  std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
  EXPECT_NE(out.find("100.0 MBps"), std::string::npos);
}

}  // namespace
}  // namespace vread::metrics
