// Shared cluster/file-setup helpers for the test suites (docs/TESTING.md).
//
// Most end-to-end suites want one of three topologies:
//   * Bed         — the canonical two-host bed (paper Fig. 10 minus the
//                   lookbusy VMs): client + datanode1 on host1, datanode2
//                   on host2, 4 MB blocks;
//   * local_bed   — single host, client + datanode1 co-located (every
//                   vRead is a local shortcut);
//   * remote_bed  — client on host1, the only replica on host2 (every
//                   vRead goes daemon-to-daemon).
// plus the fault-registry hygiene wrappers (RegistryGuard, chaos_baseline)
// shared by everything that arms fault points.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "apps/cluster.h"
#include "core/vread_daemon.h"
#include "fault/fault.h"
#include "sim/simulation.h"

namespace vread::testutil {

// Validates a DaemonConfig up front (same typed Status the daemon
// constructor enforces) so a bed with bad tuning fails at the call site
// with the CONFIG detail, not deep inside enable_vread.
inline core::DaemonConfig validated(core::DaemonConfig dc) {
  if (Status st = dc.Validate(); !st.ok()) {
    throw std::invalid_argument("test bed daemon config: " + st.to_string());
  }
  return dc;
}

// 4 MB blocks: multi-block files stay small enough for fast tests while
// still exercising block-boundary logic.
inline apps::ClusterConfig small_blocks() {
  apps::ClusterConfig cfg;
  cfg.block_size = 4 * 1024 * 1024;
  return cfg;
}

// The canonical two-host bed: client + datanode1 on host1, datanode2 on
// host2. Local reads hit datanode1's mount, remote reads go through
// host2's daemon.
struct Bed {
  apps::Cluster cluster;
  explicit Bed(apps::ClusterConfig cfg = small_blocks()) : cluster(cfg) {
    cluster.add_host("host1");
    cluster.add_host("host2");
    cluster.add_vm("host1", "client");
    cluster.create_namenode("client");
    cluster.add_datanode("host1", "datanode1");
    cluster.add_datanode("host2", "datanode2");
    cluster.add_client("client");
  }
};

// Co-located bed: client VM + datanode1 on one host. `bytes > 0` preloads
// "/f" with deterministic contents under `seed`.
inline std::unique_ptr<apps::Cluster> local_bed(std::uint64_t bytes,
                                                std::uint64_t seed) {
  auto c = std::make_unique<apps::Cluster>(small_blocks());
  c->add_host("host1");
  c->add_vm("host1", "client");
  c->create_namenode("client");
  c->add_datanode("host1", "datanode1");
  c->add_client("client");
  if (bytes > 0) c->preload_file("/f", bytes, seed, {{"datanode1"}});
  return c;
}

// Remote bed: client on host1, the only replica on host2 -> every vRead
// goes daemon-to-daemon.
inline std::unique_ptr<apps::Cluster> remote_bed(std::uint64_t bytes,
                                                 std::uint64_t seed) {
  auto c = std::make_unique<apps::Cluster>(small_blocks());
  c->add_host("host1");
  c->add_host("host2");
  c->add_vm("host1", "client");
  c->create_namenode("client");
  c->add_datanode("host2", "datanode2");
  c->add_client("client");
  c->preload_file("/f", bytes, seed, {{"datanode2"}});
  return c;
}

// True when CI runs the binary under a global chaos schedule
// (VREAD_FAULT_SCHEDULE); exact zero-count assertions are skipped then —
// extra armed points add noise the degradation machinery absorbs, which is
// the point of the chaos run.
inline bool chaos_baseline() { return std::getenv("VREAD_FAULT_SCHEDULE") != nullptr; }

// Restores the global fault registry to its baseline around a test.
struct RegistryGuard {
  RegistryGuard() { fault::registry().reset(); }
  RegistryGuard(const RegistryGuard&) = delete;
  RegistryGuard& operator=(const RegistryGuard&) = delete;
  ~RegistryGuard() { fault::registry().reset(); }
};

// Keeps a cluster's event loop alive for `t` of simulated time.
inline sim::Task idle(apps::Cluster* c, sim::SimTime t) { co_await c->sim().delay(t); }

}  // namespace vread::testutil
