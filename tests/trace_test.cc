// Tracing subsystem coverage: zero-overhead-when-disabled (no spans, and
// bit-identical simulation results with tracing on vs. off), span-tree
// invariants over a real end-to-end run (single rooted tree per read,
// scheduler spans exclusive per thread), the paper's copy arithmetic
// measured from spans (5 copies vanilla vs. 2 vRead, Fig. 2), retry /
// fallback event markers under an injected fault schedule, aggregator
// consistency, and a golden-file check of the Chrome trace_event exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "apps/cluster.h"
#include "apps/dfsio.h"
#include "core/libvread.h"
#include "core/vread_daemon.h"
#include "fault/fault.h"
#include "mem/buffer.h"
#include "trace/aggregate.h"
#include "trace/chrome_export.h"
#include "trace/tracer.h"

namespace vread::trace {
namespace {

using apps::Cluster;
using apps::ClusterConfig;
using apps::DfsIoResult;
using apps::TestDfsIo;
using mem::Buffer;

// Every test starts and ends with a clean, disabled global tracer (and a
// clean fault registry: some suites load schedules).
struct TracerGuard {
  TracerGuard() {
    tracer().disable();
    tracer().clear();
    fault::registry().reset();
  }
  ~TracerGuard() {
    tracer().disable();
    tracer().clear();
    fault::registry().reset();
  }
};

ClusterConfig small_blocks() {
  ClusterConfig cfg;
  cfg.block_size = 4 * 1024 * 1024;
  return cfg;
}

struct Bed {
  Cluster cluster;
  explicit Bed(ClusterConfig cfg = small_blocks()) : cluster(cfg) {
    cluster.add_host("host1");
    cluster.add_host("host2");
    cluster.add_vm("host1", "client");
    cluster.create_namenode("client");
    cluster.add_datanode("host1", "datanode1");
    cluster.add_datanode("host2", "datanode2");
    cluster.add_client("client");
  }
};

struct RunResult {
  std::uint64_t checksum = 0;
  std::uint64_t bytes = 0;
  sim::SimTime elapsed = 0;
  std::uint64_t events = 0;
};

// One cold co-located (or remote) read, optionally vRead, optionally traced.
RunResult run_workload(bool vread, bool traced, bool remote = false,
                       std::uint64_t size = 8 * 1024 * 1024) {
  Bed bed;
  bed.cluster.preload_file("/data", size, 77,
                           {{remote ? "datanode2" : "datanode1"}});
  if (vread) bed.cluster.enable_vread();
  bed.cluster.drop_all_caches();
  if (traced) tracer().enable(bed.cluster.sim());
  DfsIoResult r;
  bed.cluster.sim().spawn(TestDfsIo::read(bed.cluster, "client", "/data", 1 << 20, r));
  bed.cluster.sim().run();
  tracer().disable();
  return RunResult{r.checksum, r.bytes, bed.cluster.sim().now(),
                   bed.cluster.sim().events_dispatched()};
}

// ---------------------------------------------------------------- disabled

TEST(TraceDisabled, RecordsNothingAndCostsNothing) {
  TracerGuard g;
  RunResult r = run_workload(/*vread=*/true, /*traced=*/false);
  EXPECT_EQ(r.checksum, Buffer::deterministic(77, 0, 8 * 1024 * 1024).checksum());
  // The "zero allocation" counter: a disabled tracer is never touched.
  EXPECT_EQ(tracer().spans_recorded(), 0u);
  EXPECT_EQ(tracer().reads_started(), 0u);
}

TEST(TraceDisabled, EnablingTracingDoesNotChangeTheSimulation) {
  TracerGuard g;
  for (bool vread : {false, true}) {
    RunResult off = run_workload(vread, /*traced=*/false);
    tracer().clear();
    RunResult on = run_workload(vread, /*traced=*/true);
    EXPECT_GT(tracer().spans_recorded(), 0u);
    // Bit-identical results: tracing only appends spans, it never charges
    // cycles, never co_awaits and never branches simulation logic.
    EXPECT_EQ(off.checksum, on.checksum) << "vread=" << vread;
    EXPECT_EQ(off.bytes, on.bytes) << "vread=" << vread;
    EXPECT_EQ(off.elapsed, on.elapsed) << "vread=" << vread;
    EXPECT_EQ(off.events, on.events) << "vread=" << vread;
    tracer().clear();
  }
}

// ---------------------------------------------------------- tree invariants

TEST(TraceTree, EveryReadHasExactlyOneRootAndContainedSpans) {
  TracerGuard g;
  run_workload(/*vread=*/true, /*traced=*/true);
  const std::vector<Span>& spans = tracer().spans();
  ASSERT_GT(spans.size(), 0u);
  ASSERT_GT(tracer().reads_started(), 0u);

  std::map<std::uint32_t, const Span*> roots;
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kRead) continue;
    EXPECT_EQ(s.parent, 0u) << "root spans have no parent";
    EXPECT_TRUE(roots.emplace(s.read, &s).second)
        << "read " << s.read << " has two roots";
  }
  EXPECT_EQ(roots.size(), tracer().reads_started());

  for (const Span& s : spans) {
    EXPECT_LE(s.begin, s.end);
    if (s.kind == SpanKind::kRead || s.read == 0) continue;
    // Every traced non-root span belongs to a known read and starts after
    // its root opened. Asynchronous work attributed to the read — host
    // readahead disk reads and the CPU bursts they trigger — may finish
    // after the read returned, so end containment only holds for the
    // synchronous span kinds.
    auto it = roots.find(s.read);
    ASSERT_NE(it, roots.end()) << "span " << s.name << " has unknown read";
    EXPECT_GE(s.begin, it->second->begin) << s.name;
    if (s.kind != SpanKind::kDisk && s.kind != SpanKind::kCompute &&
        s.kind != SpanKind::kSyncWait) {
      EXPECT_LE(s.end, it->second->end) << s.name;
    }
  }
}

TEST(TraceTree, SchedulerSpansAreExclusivePerThread) {
  TracerGuard g;
  run_workload(/*vread=*/true, /*traced=*/true);
  // The scheduler emits one kSyncWait + kCompute pair per finished burst,
  // and a real thread runs one burst at a time — so on any real tid these
  // spans must not overlap (synthetic tracks may overlap freely).
  std::map<int, std::vector<std::pair<sim::SimTime, sim::SimTime>>> by_tid;
  for (const Span& s : tracer().spans()) {
    if (s.kind != SpanKind::kCompute && s.kind != SpanKind::kSyncWait) continue;
    if (tracer().is_track(s.tid)) continue;
    if (s.begin == s.end) continue;
    by_tid[s.tid].emplace_back(s.begin, s.end);
  }
  ASSERT_FALSE(by_tid.empty());
  for (auto& [tid, iv] : by_tid) {
    std::sort(iv.begin(), iv.end());
    for (std::size_t i = 1; i < iv.size(); ++i) {
      EXPECT_LE(iv[i - 1].second, iv[i].first)
          << "overlapping scheduler spans on tid " << tid;
    }
  }
}

// ------------------------------------------------------------ copy counts

TEST(TraceCopies, VanillaMovesEveryByteFiveTimes) {
  TracerGuard g;
  run_workload(/*vread=*/false, /*traced=*/true);
  const RunSummary s = aggregate(tracer());
  ASSERT_GT(s.total.bytes, 0u);
  // Fig. 2's vanilla path: virtio-blk, skb->tx-ring, vhost-pull,
  // vhost->rx-ring, skb->app (the datanode's sendfile skips app->skb).
  EXPECT_NEAR(s.total.copies(), 5.0, 0.35);
  EXPECT_TRUE(s.total.copy_by_site.count("copy virtio-blk"));
  EXPECT_TRUE(s.total.copy_by_site.count("copy vhost-pull"));
  EXPECT_TRUE(s.total.copy_by_site.count("copy skb->app"));
}

TEST(TraceCopies, VReadMovesEveryByteTwice) {
  TracerGuard g;
  run_workload(/*vread=*/true, /*traced=*/true);
  const RunSummary s = aggregate(tracer());
  ASSERT_GT(s.total.bytes, 0u);
  // The paper's two standing copies: daemon buffer -> shm ring -> app.
  EXPECT_NEAR(s.total.copies(), 2.0, 0.1);
  EXPECT_TRUE(s.total.copy_by_site.count("copy daemon->ring"));
  EXPECT_TRUE(s.total.copy_by_site.count("copy ring->app"));
  // No virtual-network copies at all on the shortcut path.
  EXPECT_FALSE(s.total.copy_by_site.count("copy vhost-pull"));
  EXPECT_FALSE(s.total.copy_by_site.count("copy skb->app"));
}

// -------------------------------------------------------- fault markers

TEST(TraceFaults, RetryAndFallbackSpansAppearUnderFaultSchedule) {
  TracerGuard g;
  // Lost shm requests force libvread retries; a downed RDMA link forces
  // rdma->tcp failovers on the remote leg.
  fault::registry().load_schedule(
      "virt.shm.timeout:every=7,max=3;core.daemon.rdma_down:every=2");
  run_workload(/*vread=*/true, /*traced=*/true, /*remote=*/true);
  bool saw_retry = false, saw_failover = false;
  for (const Span& s : tracer().spans()) {
    if (s.kind == SpanKind::kRetry) saw_retry = true;
    if (s.kind == SpanKind::kFallback &&
        std::string_view(s.name) == "rdma->tcp") {
      saw_failover = true;
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_failover);
  const RunSummary s = aggregate(tracer());
  EXPECT_GT(s.total.retries + s.total.fallbacks, 0);
}

TEST(TraceFaults, SocketFallbackIsMarked) {
  TracerGuard g;
  // Peer permanently down: remote opens exhaust their retries and the
  // client degrades to the vanilla socket path — visible as a
  // vread->socket fallback instant, with the read still completing.
  fault::registry().load_schedule("core.daemon.peer_down:every=1");
  RunResult r = run_workload(/*vread=*/true, /*traced=*/true, /*remote=*/true);
  EXPECT_EQ(r.checksum, Buffer::deterministic(77, 0, 8 * 1024 * 1024).checksum());
  bool saw = false;
  for (const Span& s : tracer().spans()) {
    if (s.kind == SpanKind::kFallback &&
        std::string_view(s.name) == "vread->socket") {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

// ----------------------------------------------------------- aggregator

TEST(TraceAggregate, TotalsAreTheSumOfReads) {
  TracerGuard g;
  run_workload(/*vread=*/true, /*traced=*/true);
  const RunSummary s = aggregate(tracer());
  ASSERT_GT(s.reads.size(), 0u);
  std::uint64_t bytes = 0, copy = 0;
  sim::SimTime wait = 0, elapsed = 0;
  for (const ReadBreakdown& r : s.reads) {
    EXPECT_GT(r.read, 0u);
    EXPECT_GE(r.end, r.begin);
    bytes += r.bytes;
    copy += r.copy_bytes;
    wait += r.sync_wait;
    elapsed += r.elapsed();
  }
  EXPECT_EQ(s.total.bytes, bytes);
  EXPECT_EQ(s.total.copy_bytes, copy);
  EXPECT_EQ(s.total.sync_wait, wait);
  EXPECT_EQ(s.total.elapsed(), elapsed);
  // Table printers run without tripping assertions on real data.
  std::ostringstream os;
  print_read_table(os, s);
  print_copy_sites(os, s);
  EXPECT_FALSE(os.str().empty());
}

// ---------------------------------------------------------------- export

TEST(TraceExport, GoldenChromeTrace) {
  TracerGuard g;
  // Synthetic, fully hand-controlled tracer state: two threads in two
  // groups, one track, one read with a copy span, a background wait and a
  // retry instant.
  sim::Simulation sim;
  metrics::CycleAccounting acct;
  const metrics::ThreadId app = acct.register_thread("app", "vm1");
  const metrics::ThreadId io = acct.register_thread("io", "hostA");
  Tracer& tr = tracer();
  tr.enable(sim);
  const int wire = tr.track("lan-wire", "lan");
  Ctx ctx = tr.begin_read("read1", static_cast<int>(app));
  tr.record(ctx, SpanKind::kCopy, "copy ring->app", static_cast<int>(app), 1000, 3500,
            4096);
  tr.record({}, SpanKind::kSyncWait, "cpu-queue", static_cast<int>(io), 0, 250);
  tr.record(ctx, SpanKind::kTransport, "rdma-wire", wire, 2000, 2600, 4096);
  tr.instant(ctx, SpanKind::kRetry, "libvread-retry", static_cast<int>(app));
  tr.end_read(ctx, 4096);
  tr.disable();

  std::ostringstream os;
  write_chrome_trace(os, tr, acct);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"vm1\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"hostA\"}},\n"
      "{\"ph\":\"M\",\"pid\":3,\"name\":\"process_name\",\"args\":{\"name\":\"lan\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"app\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"io\"}},\n"
      "{\"ph\":\"M\",\"pid\":3,\"tid\":1000000,\"name\":\"thread_name\",\"args\":{\"name\":\"lan-wire\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.000,\"name\":\"read1\","
      "\"cat\":\"read\",\"args\":{\"read\":1,\"bytes\":4096}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"dur\":2.500,\"name\":\"copy ring->app\","
      "\"cat\":\"copy\",\"args\":{\"read\":1,\"bytes\":4096}},\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":1,\"ts\":0.000,\"dur\":0.250,\"name\":\"cpu-queue\","
      "\"cat\":\"sync-wait\",\"args\":{\"read\":0,\"bytes\":0}},\n"
      "{\"ph\":\"X\",\"pid\":3,\"tid\":1000000,\"ts\":2.000,\"dur\":0.600,\"name\":\"rdma-wire\","
      "\"cat\":\"transport\",\"args\":{\"read\":1,\"bytes\":4096}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"s\":\"t\",\"name\":\"libvread-retry\","
      "\"cat\":\"retry\",\"args\":{\"read\":1,\"bytes\":0}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceExport, RealRunProducesWellFormedEvents) {
  TracerGuard g;
  Bed bed;
  bed.cluster.preload_file("/data", 8 * 1024 * 1024, 77, {{"datanode1"}});
  bed.cluster.enable_vread();
  bed.cluster.drop_all_caches();
  tracer().enable(bed.cluster.sim());
  DfsIoResult r;
  bed.cluster.sim().spawn(TestDfsIo::read(bed.cluster, "client", "/data", 1 << 20, r));
  bed.cluster.sim().run();
  tracer().disable();

  std::ostringstream os;
  write_chrome_trace(os, tracer(), bed.cluster.acct());
  const std::string out = os.str();
  // One event line per span (plus metadata); braces balance; the file is
  // the documented envelope.
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
  std::size_t events = 0;
  for (std::size_t p = 0; (p = out.find("{\"ph\":\"", p)) != std::string::npos; ++p)
    ++events;
  EXPECT_GT(events, tracer().spans_recorded());  // spans + metadata records
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

}  // namespace
}  // namespace vread::trace
